// Command radqec regenerates the tables behind every figure of the
// paper's evaluation (Figures 3-8) plus the ablation studies.
//
// Usage:
//
//	radqec [flags] <experiment>
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig8summary
// ablation-decoder ablation-ns ablation-layout ablation-rounds
// memory threshold logical all
//
// Flags:
//
//	-shots N     shots per measured point (default 2000)
//	-seed N      campaign seed (default 1)
//	-workers N   parallel shot runners (default GOMAXPROCS)
//	-p RATE      intrinsic physical error rate (default 0.01)
//	-ns N        temporal samples of the fault decay (default 10)
//	-rounds N    stabilization rounds per code (default 2, the paper's
//	             protocol; >2 decodes over the multi-round space-time
//	             detector-error model)
//	-engine E    simulation engine: auto (default), tableau, frame, or
//	             batch. auto runs every campaign on the bit-parallel
//	             batched frame engine (universal over the Clifford set;
//	             radiation resets on superposed XXZZ sites use the
//	             collapsed-branch approximation); tableau forces the
//	             exact-oracle stabilizer tableau
//	-engine-width W  batched engine tile width in lanes: auto (default),
//	             64, 256, or 512. auto picks the widest tile whose frame
//	             state fits the cache budget. Width never changes
//	             results — shot i always lives in lane i%64 of absolute
//	             word i/64 — only throughput
//	-decoder D   syndrome decoder: mwpm (default, blossom matching) or
//	             uf (almost-linear union-find); both have tile-parallel
//	             twins for the batched engine
//	-ci W        target Wilson 95% half-width; >0 turns on adaptive
//	             shot allocation per point (default off)
//	-maxshots N  adaptive per-point shot cap (0 = worst-case count
//	             guaranteeing -ci at any rate)
//	-store DIR   content-addressed result store: completed points are
//	             served from DIR instead of recomputed, new points are
//	             committed to it, and batch-level checkpoints make an
//	             interrupted run resumable; the same directory a
//	             radqecd daemon serves
//	-resume      with -store, pick interrupted points back up at their
//	             last checkpointed batch instead of shot zero
//	-controller on|off  score-driven batch/allocation controller
//	             (default on): telemetry-scored chunk sizing, priority
//	             handouts and tail-aware shot allocation. Tables are
//	             byte-identical either way — the controller only
//	             reorders mechanism, never policy
//	-dwell N     policy batches the controller holds a chunk size
//	             before re-scoring (default 4; higher = calmer)
//	-hysteresis H  relative score advantage a challenger chunk size
//	             needs to displace the incumbent (default 0.15)
//	-stats       print a per-experiment telemetry summary to stderr:
//	             shots/s, chunk/batch counts, cache traffic, allocation
//	             and the engine-routing decision
//	-trace-sample on|off  record distributed-trace spans for the run
//	             (default off). Requires -trace-out or -trace-chrome;
//	             tracing never changes results, only observability
//	-trace-out F   write the recorded spans to F as NDJSON (one span
//	             per line, the /v1/campaigns/{id}/trace record shape)
//	-trace-chrome F  write the recorded spans to F as Chrome
//	             trace-event JSON, loadable in Perfetto or
//	             chrome://tracing
//	-log-format text|json  structured-log rendering (default text)
//	-log-level L minimum log level: debug, info, warn, or error
//	             (default info)
//	-cpuprofile F  write a pprof CPU profile of the run to F
//	-memprofile F  write a pprof heap profile after the run to F
//	-csv         emit CSV instead of aligned text
//	-json        stream one JSON record per completed sweep point and
//	             emit each table as a JSON record
//	-o FILE      write to FILE instead of stdout
//
// The first SIGINT/SIGTERM cancels the campaign at its next batch
// boundary — in-progress points checkpoint, the store and any active
// pprof profiles flush, and the process exits 128+signal with a
// resumable store behind it. A second signal skips the boundary wait
// and exits immediately (the store still flushes whole records).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"radqec/internal/control"
	"radqec/internal/core"
	"radqec/internal/exp"
	"radqec/internal/logsetup"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/telemetry"
	"radqec/internal/trace"
)

func main() {
	shots := flag.Int("shots", 2000, "shots per measured point")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 0, "parallel shot runners (0 = GOMAXPROCS)")
	p := flag.Float64("p", 0.01, "intrinsic physical error rate")
	ns := flag.Int("ns", 10, "temporal samples of the fault decay")
	engine := flag.String("engine", exp.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	engineWidth := flag.String("engine-width", core.WidthAuto, "batched engine tile width in lanes: auto, 64, 256, or 512")
	decoder := flag.String("decoder", exp.DecoderMWPM, "syndrome decoder: mwpm or uf")
	rounds := flag.Int("rounds", 2, "stabilization rounds per code (>= 2; >2 opens the multi-round memory workload)")
	ci := flag.Float64("ci", 0, "target Wilson 95% half-width per point (>0 enables adaptive shots)")
	maxShots := flag.Int("maxshots", 0, "adaptive per-point shot cap (0 = worst-case count for -ci)")
	storeDir := flag.String("store", "", "content-addressed result store directory (empty disables caching)")
	resume := flag.Bool("resume", false, "with -store, resume interrupted points from their last checkpoint")
	controller := flag.String("controller", "on", "score-driven batch/allocation controller: on or off")
	dwell := flag.Int("dwell", 4, "policy batches the controller holds a chunk size before re-scoring")
	hysteresis := flag.Float64("hysteresis", 0.15, "relative score advantage needed to displace the incumbent chunk size")
	statsOut := flag.Bool("stats", false, "print a per-experiment telemetry summary to stderr")
	traceSample := flag.String("trace-sample", "off", "record distributed-trace spans for the run: on or off")
	traceOut := flag.String("trace-out", "", "write recorded spans to this file as NDJSON")
	traceChrome := flag.String("trace-chrome", "", "write recorded spans to this file as Chrome trace-event JSON")
	logFormat := flag.String("log-format", "text", "structured-log rendering: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the experiment run to this file")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "stream per-point JSON records and emit tables as JSON")
	outPath := flag.String("o", "", "write output to file instead of stdout")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	// Flag values that select named strategies are validated here, with
	// a usage error listing the valid names, so a typo can never reach
	// the panic paths deep in core.NewEngineRunner or the sweep workers.
	if !slices.Contains(exp.Engines(), *engine) {
		usageError(fmt.Sprintf("unknown engine %q (want one of %v)", *engine, exp.Engines()))
	}
	if !slices.Contains(exp.Decoders(), *decoder) {
		usageError(fmt.Sprintf("unknown decoder %q (want one of %v)", *decoder, exp.Decoders()))
	}
	if _, err := core.ResolveEngineWidth(*engineWidth); err != nil {
		usageError(fmt.Sprintf("unknown engine width %q (want one of %v)", *engineWidth, core.Widths()))
	}
	// Numeric flags are validated the same way: a constraint violation
	// is a usage error naming the constraint, never a deep panic or a
	// silently degenerate campaign.
	if *shots < 1 {
		usageError(fmt.Sprintf("-shots %d out of range (want >= 1)", *shots))
	}
	if *p < 0 || *p > 1 {
		usageError(fmt.Sprintf("-p %g out of range (want a probability in [0,1])", *p))
	}
	if *ns < 1 {
		usageError(fmt.Sprintf("-ns %d out of range (want >= 1 temporal samples)", *ns))
	}
	if *rounds < 2 {
		usageError(fmt.Sprintf("-rounds %d out of range (want >= 2 stabilization rounds)", *rounds))
	}
	if *workers < 0 {
		usageError(fmt.Sprintf("-workers %d out of range (want >= 0; 0 = GOMAXPROCS)", *workers))
	}
	if *ci < 0 || *ci >= 0.5 {
		usageError(fmt.Sprintf("-ci %g out of range (want 0 <= ci < 0.5; 0 disables adaptive shots)", *ci))
	}
	if *maxShots < 0 {
		usageError(fmt.Sprintf("-maxshots %d out of range (want >= 0; 0 = worst-case count for -ci)", *maxShots))
	}
	if *resume && *storeDir == "" {
		usageError("-resume requires -store DIR")
	}
	if *controller != "on" && *controller != "off" {
		usageError(fmt.Sprintf("-controller %q out of range (want on or off)", *controller))
	}
	if *dwell < 1 {
		usageError(fmt.Sprintf("-dwell %d out of range (want >= 1 policy batches)", *dwell))
	}
	if *hysteresis < 0 || *hysteresis >= 1 {
		usageError(fmt.Sprintf("-hysteresis %g out of range (want 0 <= hysteresis < 1)", *hysteresis))
	}
	if *traceSample != "on" && *traceSample != "off" {
		usageError(fmt.Sprintf("-trace-sample %q out of range (want on or off)", *traceSample))
	}
	if *traceSample == "on" && *traceOut == "" && *traceChrome == "" {
		usageError("-trace-sample on requires -trace-out FILE or -trace-chrome FILE (nowhere to write the spans)")
	}
	if *traceSample != "on" && (*traceOut != "" || *traceChrome != "") {
		usageError("-trace-out/-trace-chrome require -trace-sample on")
	}
	if _, err := logsetup.Init(os.Stderr, *logFormat, *logLevel); err != nil {
		usageError(err.Error())
	}
	cfg := exp.Config{
		Shots:    *shots,
		Seed:     *seed,
		Workers:  *workers,
		P:        *p,
		NS:       *ns,
		Rounds:   *rounds,
		CI:       *ci,
		MaxShots: *maxShots,
		Engine:   *engine,
		Width:    *engineWidth,
		Decoder:  *decoder,
		Resume:   *resume,
	}
	if *controller == "on" {
		cfg.Control = &control.Policy{Enabled: true, Dwell: *dwell, Hysteresis: *hysteresis}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		cfg.Cache = st
		resultStore = st
	}
	// The campaign context is what the signal handler cancels: the sweep
	// observes it at the next batch boundary, flushes every in-progress
	// point's checkpoint, and returns the cause.
	runCtx, cancelRun := context.WithCancelCause(context.Background())
	defer cancelRun(nil)
	cfg.Context = runCtx

	defer closeStoreOnce()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	var selected []exp.Experiment
	for _, e := range exp.Experiments() {
		if e.Name == name || name == "all" {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "radqec: unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}

	// Profiling hooks for decode-path optimisation work, started only
	// after experiment selection so no usage-error exit can strand an
	// open profile: the CPU profile covers the experiment loop, the
	// heap profile snapshots
	// the end state (after a GC, so it shows live campaign structures,
	// not transient shot buffers). Flushing runs through flushProfiles
	// so fatal's os.Exit cannot leave a truncated CPU profile or skip
	// the heap profile — an errored run is exactly when the profile is
	// wanted.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopCPU := func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		prev := flushProfiles
		flushProfiles = func() {
			stopCPU()
			prev()
		}
	}
	if *memProfile != "" {
		path := *memProfile
		prev := flushProfiles
		flushProfiles = func() {
			prev()
			writeHeapProfile(path)
		}
	}
	// Local trace recording: one recorder spans the whole invocation
	// (each experiment gets its own campaign root span under it), and
	// the dump rides the flushProfiles chain so an errored or
	// interrupted run still writes the spans it collected — exactly
	// when the trace is wanted.
	var recorder *trace.Recorder
	if *traceSample == "on" {
		recorder = trace.New("cli")
		rec, nd, chrome := recorder, *traceOut, *traceChrome
		prev := flushProfiles
		flushProfiles = func() {
			prev()
			dumpTrace(rec, nd, chrome)
		}
	}
	defer flushOnce()
	// The signal handler flushes everything an interrupted campaign
	// wants back: active pprof profiles and the result store's NDJSON
	// segment (whose batch-level checkpoints are already on disk), then
	// exits with the conventional 128+signal status. It is started only
	// after the profile hooks and store are installed — goroutine
	// creation gives the happens-before edge that makes the
	// flushProfiles chain and resultStore safely visible to it. The
	// store's append-under-mutex discipline means Close lands between
	// whole records, so the killed run leaves a cleanly resumable store.
	// Notify is registered here, not inside the goroutine, so there is
	// no startup window where a signal still takes the default
	// disposition after the store and profile hooks are live.
	// The first signal cancels the campaign context: workers stop at
	// their next batch boundary with every in-progress point's
	// checkpoint flushed, and the experiment loop exits through the
	// graceful path below. A second signal is the escape hatch — flush
	// and exit immediately without waiting for the boundary.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		if n, ok := sig.(syscall.Signal); ok {
			interruptSignal.Store(int32(n))
		} else {
			interruptSignal.Store(-1)
		}
		slog.Info("radqec: cancelling at the next batch boundary (signal again to exit now)", "signal", sig.String())
		cancelRun(fmt.Errorf("interrupted by %v", sig))
		sig = <-sigc
		flushOnce()
		if resultStore != nil {
			closeStoreOnce()
			slog.Warn("radqec: store flushed; rerun with -store -resume to continue", "signal", sig.String(), "store", *storeDir)
		}
		if n, ok := sig.(syscall.Signal); ok {
			os.Exit(128 + int(n))
		}
		os.Exit(1)
	}()
	// The frame engines approximate radiation resets on superposed XXZZ
	// sites (collapsed-branch coin; see package frame); say so once on
	// stderr — only when a selected experiment actually enters that
	// domain — so default-flag reproduction runs know the exact oracle.
	if resolved, _ := core.ResolveEngine(*engine); resolved != core.EngineTableau {
		for _, e := range selected {
			if e.XXZZRad {
				slog.Warn("radqec: radiation resets on superposed XXZZ sites use the collapsed-branch approximation; -engine tableau is the exact oracle",
					"engine", string(resolved))
				break
			}
		}
	}
	enc := json.NewEncoder(out)
	var campaignID int64
	for _, e := range selected {
		if *jsonOut {
			// The sweep engine serialises OnResult calls, so the encoder
			// needs no extra locking.
			expName := e.Name
			cfg.OnPoint = func(r sweep.Result) {
				if err := enc.Encode(exp.NewPointRecord(expName, r)); err != nil {
					fatal(err)
				}
			}
		}
		if *statsOut {
			campaignID++
			cfg.Telemetry = telemetry.NewCampaign(campaignID, e.Name)
		}
		root := recorder.Campaign(e.Name) // inert when -trace-sample off
		cfg.Trace = root.Context()
		start := time.Now()
		tab, err := e.Run(cfg)
		root.SetError(err)
		root.End()
		if err != nil {
			if sig := interruptSignal.Load(); sig != 0 {
				// Graceful cancellation: the sweep stopped at a batch
				// boundary and flushed its checkpoints. Make them
				// durable and exit with the conventional signal status.
				flushOnce()
				if resultStore != nil {
					closeStoreOnce()
					slog.Warn("radqec: interrupted; store flushed; rerun with -store -resume to continue", "store", *storeDir)
				}
				if sig > 0 {
					os.Exit(128 + int(sig))
				}
				os.Exit(1)
			}
			fatal(err)
		}
		if tel := cfg.Telemetry; tel != nil {
			tel.Finish()
			printStats(tel.Stats())
			cfg.Telemetry = nil
		}
		switch {
		case *jsonOut:
			if err := enc.Encode(exp.NewTableRecord(e.Name, tab, time.Since(start))); err != nil {
				fatal(err)
			}
		case *csv:
			tab.WriteCSV(out)
		default:
			tab.WriteText(out)
			fmt.Fprintf(out, "(%s completed in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	}
}

// printStats writes the -stats telemetry summary for one experiment to
// stderr: aggregate engine throughput, chunk/batch counts, cache
// traffic, allocation pressure and the engine-routing decision.
func printStats(st telemetry.Stats) {
	fmt.Fprintf(os.Stderr,
		"radqec: %s: %d shots (%d errors) over %d points in %d chunks / %d batches; %.3g shots/s engine throughput; cache %d hits / %d misses; %.1f MiB allocated\n",
		st.Experiment, st.Shots, st.Errors, st.PointsDone, st.Chunks, st.Batches,
		st.ShotsPerSec, st.CacheHits, st.CacheMisses, float64(st.AllocBytes)/(1<<20))
	if st.ChunkSize > 0 {
		fmt.Fprintf(os.Stderr, "radqec: %s: controller chunk size %d (dwell %d left)\n",
			st.Experiment, st.ChunkSize, st.DwellLeft)
	}
	if r := st.Route; r != nil {
		fmt.Fprintf(os.Stderr, "radqec: %s: engine %s -> %s (%s)\n",
			st.Experiment, r.Requested, r.Resolved, r.Reason)
		if r.Width > 0 {
			fmt.Fprintf(os.Stderr, "radqec: %s: engine width %d lanes (%s)\n",
				st.Experiment, r.Width, r.WidthReason)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: radqec [flags] <experiment>\n\nexperiments:\n")
	exps := exp.Experiments()
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintf(os.Stderr, "  %-18s %s\n\nflags:\n", "all", "run every experiment")
	flag.PrintDefaults()
}

// flushProfiles finalises any active profiling; flushOnce guards it so
// the normal defer, an error exit and the signal handler cannot run it
// twice (the handler races the main goroutine, hence sync.Once).
var (
	flushProfiles = func() {}
	flushGuard    sync.Once
)

func flushOnce() {
	flushGuard.Do(func() { flushProfiles() })
}

// resultStore is the -store cache when one is open; closeStoreOnce
// syncs and closes it exactly once across the normal exit path, fatal,
// and the signal handler.
var (
	resultStore *store.Store
	storeGuard  sync.Once
)

// interruptSignal holds the first signal's number (or -1 for a
// non-syscall signal) so the experiment loop can tell a graceful
// cancellation from an engine error and exit 128+signal.
var interruptSignal atomic.Int32

func closeStoreOnce() {
	storeGuard.Do(func() {
		if resultStore == nil {
			return
		}
		if err := resultStore.Close(); err != nil {
			slog.Error("radqec: store close failed", "error", err)
		}
	})
}

// dumpTrace writes the run's recorded spans to the -trace-out (NDJSON)
// and -trace-chrome (Chrome trace-event JSON) files. Best-effort on
// the way out, like the pprof flush: errors are logged, never fatal.
func dumpTrace(rec *trace.Recorder, ndPath, chromePath string) {
	spans := rec.Spans()
	if ndPath != "" {
		f, err := os.Create(ndPath)
		if err != nil {
			slog.Error("radqec: trace dump failed", "error", err)
		} else {
			enc := json.NewEncoder(f)
			for i := range spans {
				if err := enc.Encode(&spans[i]); err != nil {
					slog.Error("radqec: trace dump failed", "error", err)
					break
				}
			}
			f.Close()
		}
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			slog.Error("radqec: trace dump failed", "error", err)
			return
		}
		if err := trace.WriteChrome(f, spans); err != nil {
			slog.Error("radqec: trace dump failed", "error", err)
		}
		f.Close()
	}
	slog.Info("radqec: trace written", "trace_id", rec.TraceID().String(), "spans", len(spans))
}

// writeHeapProfile snapshots the heap after a GC. Errors are reported
// but do not recurse into fatal: the profile is best-effort on the way
// out.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		slog.Error("radqec: heap profile failed", "error", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		slog.Error("radqec: heap profile failed", "error", err)
	}
}

func fatal(err error) {
	flushOnce()
	closeStoreOnce()
	slog.Error("radqec: fatal", "error", err)
	os.Exit(1)
}

// usageError reports a bad flag value and exits with the usage status.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "radqec: %s\n", msg)
	os.Exit(2)
}
