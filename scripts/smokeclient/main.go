// Command smokeclient is the smoke harness's typed campaign client: it
// submits one campaign through internal/client and re-emits the stream
// as NDJSON on stdout, replacing the hand-rolled curl legs of
// daemon_smoke.sh and fabric_smoke.sh with the same client package the
// fabric coordinator and the server tests use. A campaign that ends in
// an error record exits nonzero, so shell harnesses fail loudly.
//
// Usage:
//
//	smokeclient -addr HOST:PORT -experiment NAME [-shots N] [-seed N] [-trace-sample on|off]
//
// With -trace-sample on the campaign is submitted sampled and the
// daemon-assigned trace ID is echoed to stderr as
// "smokeclient: trace <id>", for harnesses to scrape and replay
// against the trace endpoints.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"radqec/internal/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8423", "daemon address")
	experiment := flag.String("experiment", "", "experiment to run (required)")
	shots := flag.Int("shots", 0, "shots per point (0 = daemon default)")
	seedV := flag.Uint64("seed", 1, "base RNG seed")
	traceSample := flag.String("trace-sample", "", "trace sampling for this campaign: on, off, or empty (daemon default)")
	flag.Parse()
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "smokeclient: -experiment is required")
		os.Exit(2)
	}

	cl := client.New(*addr, nil)
	seed := *seedV
	stream, err := cl.SubmitCampaign(context.Background(), client.CampaignRequest{
		Experiment:  *experiment,
		Shots:       *shots,
		Seed:        &seed,
		TraceSample: *traceSample,
	}, client.SubmitOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokeclient:", err)
		os.Exit(1)
	}
	defer stream.Close()
	fmt.Fprintf(os.Stderr, "smokeclient: campaign %d\n", stream.ID)
	if stream.TraceID != "" {
		fmt.Fprintf(os.Stderr, "smokeclient: trace %s\n", stream.TraceID)
	}

	enc := json.NewEncoder(os.Stdout)
	failed := false
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smokeclient: stream:", err)
			os.Exit(1)
		}
		// Re-emit through the same typed records the server encoded, so
		// downstream comparators see the daemon's exact field set.
		switch {
		case rec.Point != nil:
			err = enc.Encode(rec.Point)
		case rec.Table != nil:
			err = enc.Encode(rec.Table)
		case rec.Err != nil:
			failed = true
			err = enc.Encode(struct {
				Type string `json:"type"`
				client.ErrorRecord
			}{"error", *rec.Err})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smokeclient: encode:", err)
			os.Exit(1)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "smokeclient: campaign ended in an error record")
		os.Exit(1)
	}
}
