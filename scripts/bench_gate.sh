#!/usr/bin/env bash
# bench_gate.sh OLD.bench NEW.bench [MAX_RATIO]
#
# Throughput-regression gate over two `go test -bench` text outputs
# (the benchstat input format). For every benchmark name present in
# BOTH files, the mean ns/op is compared; the gate fails when any
# common benchmark's new/old time ratio exceeds MAX_RATIO (default
# 1.25, i.e. a >20% throughput drop). Benchmarks only present on one
# side — new benchmarks on a PR, retired ones on main — are reported
# and skipped, never silently gated.
set -euo pipefail

old=${1:?usage: bench_gate.sh OLD.bench NEW.bench [MAX_RATIO]}
new=${2:?usage: bench_gate.sh OLD.bench NEW.bench [MAX_RATIO]}
max_ratio=${3:-1.25}

# A missing or empty artifact means a bench job upstream broke or an
# upload/download step dropped the file; fail with a message naming the
# side and the file instead of handing awk nothing to parse.
for side in old new; do
  file=${!side}
  if [ ! -e "$file" ]; then
    echo "bench_gate: $side bench artifact missing: $file" >&2
    exit 2
  fi
  if [ ! -s "$file" ]; then
    echo "bench_gate: $side bench artifact empty: $file" >&2
    exit 2
  fi
  if ! grep -q '^Benchmark' "$file"; then
    echo "bench_gate: $side bench artifact has no benchmark lines: $file (did the bench run fail?)" >&2
    exit 2
  fi
done

awk -v max_ratio="$max_ratio" -v oldfile="$old" -v newfile="$new" '
  # Benchmark result lines: "BenchmarkName-8  N  12345 ns/op  ...".
  # CPU-count suffixes are stripped so the gate survives runner drift.
  function benchname(s) { sub(/-[0-9]+$/, "", s); return s }
  FNR == 1 { side = (FILENAME == oldfile) ? "old" : "new" }
  /^Benchmark/ {
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op") {
        name = benchname($1)
        sum[side, name] += $i
        cnt[side, name]++
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        break
      }
    }
  }
  END {
    bad = 0
    compared = 0
    for (k = 1; k <= n; k++) {
      name = order[k]
      has_old = cnt["old", name] > 0
      has_new = cnt["new", name] > 0
      if (!has_old || !has_new) {
        printf "SKIP  %-50s only on %s side\n", name, (has_old ? "old" : "new")
        continue
      }
      compared++
      o = sum["old", name] / cnt["old", name]
      m = sum["new", name] / cnt["new", name]
      ratio = m / o
      verdict = (ratio > max_ratio) ? "FAIL" : "ok"
      if (ratio > max_ratio) bad++
      printf "%-5s %-50s old %12.0f ns/op  new %12.0f ns/op  ratio %.3f\n", \
        verdict, name, o, m, ratio
    }
    if (n == 0) { print "bench_gate: no benchmark lines found" > "/dev/stderr"; exit 2 }
    if (compared == 0) {
      # A rename or -bench regex drift must not disable the gate
      # silently: with zero common benchmarks there is nothing gated.
      print "bench_gate: no benchmark common to both sides; gate cannot run" > "/dev/stderr"
      exit 2
    }
    if (bad > 0) {
      printf "bench_gate: %d benchmark(s) regressed beyond %.2fx\n", bad, max_ratio > "/dev/stderr"
      exit 1
    }
    print "bench_gate: no regression beyond " max_ratio "x over " compared " benchmark(s)"
  }
' "$old" "$new"
