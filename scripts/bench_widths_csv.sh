#!/usr/bin/env bash
# bench_widths_csv.sh BENCH_widths.json > bench_widths.csv
#
# Flattens BenchmarkEngineWidthMatrix output into the shots/s matrix
# CSV recorded as a CI artifact: one row per (code, distance, rounds,
# width_lanes) cell. The input is either a `go test -json` event stream
# (the BENCH_widths.json artifact) or plain `go test -bench` text; the
# JSON stream is reassembled first because test2json splits a benchmark
# result across output events (the padded name flushes before the run,
# the numbers after it).
set -euo pipefail

in=${1:?usage: bench_widths_csv.sh BENCH_widths.json}
if [ ! -s "$in" ]; then
  echo "bench_widths_csv: input missing or empty: $in" >&2
  exit 2
fi

if grep -q '"Action":"output"' "$in"; then
  text=$(grep '"Action":"output"' "$in" \
    | sed -e 's/.*"Output":"//' -e 's/"}[[:space:]]*$//' \
    | awk '{printf "%s", $0}' \
    | sed -e 's/\\n/\n/g' -e 's/\\t/\t/g')
else
  text=$(cat "$in")
fi

echo "code,distance,rounds,width_lanes,shots_per_sec"
rows=$(printf '%s\n' "$text" | awk '
  # "BenchmarkEngineWidthMatrix/<code>-d<D>-r<R>/w<W>-<cpus>  N  ... X shots/s"
  /^BenchmarkEngineWidthMatrix\// {
    v = ""
    for (i = 1; i < NF; i++) if ($(i + 1) == "shots/s") v = $i
    if (v == "") next
    name = $1
    sub(/-[0-9]+$/, "", name) # CPU-count suffix
    n = split(name, p, "/")
    split(p[2], wl, "-")
    printf "%s,%s,%s,%s,%s\n", wl[1], substr(wl[2], 2), substr(wl[3], 2), substr(p[n], 2), v
  }
')
if [ -z "$rows" ]; then
  echo "bench_widths_csv: no EngineWidthMatrix shots/s rows in $in (did the bench run fail?)" >&2
  exit 2
fi
printf '%s\n' "$rows"
