#!/usr/bin/env bash
# fabric_smoke.sh [BIN_DIR]
#
# End-to-end smoke test of the two-node campaign fabric as separate
# OS processes (the in-process ring lives in internal/server tests):
#
#   1. start two radqecd peers, each with its own store, joined into
#      one static ring via -peers/-self
#   2. run the same fig5 campaign through the CLI (single-node
#      reference) and through peer A, and assert the fabric table and
#      every per-point record are byte-identical to the reference
#   3. assert the work actually sharded: radqecd_points_computed_total
#      summed across the ring equals the point count exactly (each
#      point's shots burned once, nowhere twice), both peers computed a
#      nonzero share, peer A resolved a nonzero number of points
#      remotely (radqecd_fabric_remote_hits_total > 0), and no
#      takeovers fired on a healthy ring
#   4. warm re-submission to peer B replays entirely from its store
#      (fetched + owned results): zero new engine work anywhere
#   5. submit a fresh sampled campaign to peer A and assert the
#      distributed trace stitches: one trace ID, spans from both peers,
#      at least one remote-fetch span, the same trace retrievable from
#      peer B by trace ID, and a Perfetto-loadable ?format=chrome
#      export (written to $TRACE_CHROME_OUT when set, for CI artifacts)
#   6. SIGTERM both daemons and require clean exits
#
# Builds into BIN_DIR (default: a temp dir). Needs python3 and curl.
set -euo pipefail

SHOTS=2000
SEED=7
EXPERIMENT=fig5

bindir=${1:-}
workdir=$(mktemp -d)
cleanup() {
  for pid in "${pid_a:-}" "${pid_b:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT
if [[ -z "$bindir" ]]; then
  bindir="$workdir/bin"
fi
mkdir -p "$bindir"

echo "== building radqec + radqecd + smokeclient"
go build -o "$bindir/" ./cmd/radqec ./cmd/radqecd ./scripts/smokeclient

freeport() {
  python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()'
}
addr_a="127.0.0.1:$(freeport)"
addr_b="127.0.0.1:$(freeport)"
ring="$addr_a,$addr_b"

echo "== starting fabric ring: $ring"
"$bindir/radqecd" -addr "$addr_a" -store "$workdir/store-a" \
  -peers "$ring" -self "$addr_a" >"$workdir/daemon-a.log" 2>&1 &
pid_a=$!
"$bindir/radqecd" -addr "$addr_b" -store "$workdir/store-b" \
  -peers "$ring" -self "$addr_b" >"$workdir/daemon-b.log" 2>&1 &
pid_b=$!

wait_healthy() {
  local addr=$1 pid=$2 name=$3
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "fabric_smoke: $name died on startup" >&2
      cat "$workdir/daemon-$name.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "fabric_smoke: $name never became healthy" >&2
  exit 1
}
wait_healthy "$addr_a" "$pid_a" a
wait_healthy "$addr_b" "$pid_b" b

metric() { curl -fsS "http://$1/metrics" | awk -v m="radqecd_$2" '$1==m{print $2}'; }

echo "== CLI single-node reference run"
"$bindir/radqec" -shots "$SHOTS" -seed "$SEED" -json "$EXPERIMENT" \
  >"$workdir/cli.ndjson" 2>/dev/null

echo "== fabric submission to peer A"
"$bindir/smokeclient" -addr "$addr_a" -experiment "$EXPERIMENT" -shots "$SHOTS" -seed "$SEED" \
  >"$workdir/fabric.ndjson" 2>/dev/null

# Peer B's fan-out campaign can outlive A's stream by a beat; settle
# before scraping counters.
for _ in $(seq 1 100); do
  active=$(( $(metric "$addr_a" campaigns_active) + $(metric "$addr_b" campaigns_active) ))
  if [[ "$active" == "0" ]]; then break; fi
  sleep 0.1
done

npoints=$(python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]

def load(name):
    points, tables = {}, []
    with open(f"{workdir}/{name}.ndjson") as f:
        for line in f:
            rec = json.loads(line)
            if rec["type"] == "point":
                rec.pop("cached", False)
                points[rec["key"]] = rec
            elif rec["type"] == "table":
                rec.pop("elapsed_ms")
                tables.append(rec)
            else:
                sys.exit(f"unexpected record type {rec['type']!r} in {name}")
    if len(tables) != 1:
        sys.exit(f"{name}: {len(tables)} table records")
    return points, tables[0]

cli_pts, cli_tab = load("cli")
fab_pts, fab_tab = load("fabric")
if fab_tab != cli_tab:
    sys.exit("fabric table differs from the single-node CLI table")
if set(fab_pts) != set(cli_pts):
    sys.exit("fabric run streamed different point keys than the CLI")
for key, rec in cli_pts.items():
    if fab_pts[key] != rec:
        sys.exit(f"fabric point {key} differs from the CLI reference")
print(len(cli_pts))
EOF
)
echo "fabric_smoke: $npoints points byte-identical to the single-node reference"

computed_a=$(metric "$addr_a" points_computed_total)
computed_b=$(metric "$addr_b" points_computed_total)
remote_hits_a=$(metric "$addr_a" fabric_remote_hits_total)
takeovers=$(( $(metric "$addr_a" fabric_takeovers_total) + $(metric "$addr_b" fabric_takeovers_total) ))
total=$(( computed_a + computed_b ))
echo "fabric_smoke: computed A=$computed_a B=$computed_b remote_hits(A)=$remote_hits_a takeovers=$takeovers"
if [[ "$total" != "$npoints" ]]; then
  echo "fabric_smoke: points_computed_total across ring = $total, want exactly $npoints (single-flight violated)" >&2
  exit 1
fi
if [[ "$computed_a" == "0" || "$computed_b" == "0" ]]; then
  echo "fabric_smoke: ring did not shard (A=$computed_a B=$computed_b)" >&2
  exit 1
fi
if [[ "$remote_hits_a" == "0" ]]; then
  echo "fabric_smoke: peer A resolved no points remotely" >&2
  exit 1
fi
if [[ "$takeovers" != "0" ]]; then
  echo "fabric_smoke: $takeovers takeovers on a healthy ring" >&2
  exit 1
fi

echo "== warm re-submission to peer B (must be a full replay, no engine work)"
"$bindir/smokeclient" -addr "$addr_b" -experiment "$EXPERIMENT" -shots "$SHOTS" -seed "$SEED" \
  >"$workdir/warm.ndjson" 2>/dev/null
python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]
warm = [json.loads(l) for l in open(f"{workdir}/warm.ndjson")]
cli_tab = [json.loads(l) for l in open(f"{workdir}/cli.ndjson") if json.loads(l)["type"] == "table"][0]
warm_tab = [r for r in warm if r["type"] == "table"][0]
cli_tab.pop("elapsed_ms"); warm_tab.pop("elapsed_ms")
if warm_tab != cli_tab:
    sys.exit("warm fabric table differs from the single-node reference")
uncached = [r["key"] for r in warm if r["type"] == "point" and not r.get("cached")]
if uncached:
    sys.exit(f"warm run on peer B recomputed {len(uncached)} points: {uncached[:3]}")
EOF
computed_a2=$(metric "$addr_a" points_computed_total)
computed_b2=$(metric "$addr_b" points_computed_total)
if [[ "$computed_a2" != "$computed_a" || "$computed_b2" != "$computed_b" ]]; then
  echo "fabric_smoke: warm run invoked engines (A $computed_a->$computed_a2, B $computed_b->$computed_b2)" >&2
  exit 1
fi
echo "fabric_smoke: warm replay on peer B was a full cache hit"

echo "== sampled campaign: distributed trace must stitch across the ring"
# A fresh seed forces real sharded work (the smoke seed is fully cached
# by now), so the trace contains computation on both peers and at least
# one cross-node result fetch.
"$bindir/smokeclient" -addr "$addr_a" -experiment "$EXPERIMENT" -shots "$SHOTS" \
  -seed $((SEED + 1000)) -trace-sample on \
  >/dev/null 2>"$workdir/traced.stderr"
cid=$(awk '/smokeclient: campaign /{print $3}' "$workdir/traced.stderr")
tid=$(awk '/smokeclient: trace /{print $3}' "$workdir/traced.stderr")
if [[ -z "$cid" || -z "$tid" ]]; then
  echo "fabric_smoke: sampled run reported no campaign/trace id" >&2
  cat "$workdir/traced.stderr" >&2
  exit 1
fi
echo "fabric_smoke: campaign $cid trace $tid"
# Settle again: peer B's half of the trace finishes a beat after A's stream.
for _ in $(seq 1 100); do
  active=$(( $(metric "$addr_a" campaigns_active) + $(metric "$addr_b" campaigns_active) ))
  if [[ "$active" == "0" ]]; then break; fi
  sleep 0.1
done
curl -fsS "http://$addr_a/v1/campaigns/$cid/trace" >"$workdir/trace-a.ndjson"
curl -fsS "http://$addr_b/v1/traces/$tid" >"$workdir/trace-b.ndjson"
chrome_out=${TRACE_CHROME_OUT:-$workdir/trace.chrome.json}
curl -fsS "http://$addr_a/v1/campaigns/$cid/trace?format=chrome" >"$chrome_out"
python3 - "$workdir" "$tid" "$addr_a" "$addr_b" "$chrome_out" <<'EOF'
import json, sys
workdir, tid, addr_a, addr_b, chrome_out = sys.argv[1:6]

def load(path):
    return [json.loads(l) for l in open(path) if l.strip()]

spans = load(f"{workdir}/trace-a.ndjson")
if not spans:
    sys.exit("peer A returned an empty trace")
ids = {s["trace_id"] for s in spans}
if ids != {tid}:
    sys.exit(f"trace from peer A is not a single stitched trace: ids {sorted(ids)}, want {{{tid}}}")
nodes = {s["node"] for s in spans}
if not {addr_a, addr_b} <= nodes:
    sys.exit(f"stitched trace has spans from {sorted(nodes)}, want both {addr_a} and {addr_b}")
fetches = [s for s in spans if s["name"] == "remote-fetch"]
if not fetches:
    sys.exit("stitched trace has no remote-fetch span")
spans_b = load(f"{workdir}/trace-b.ndjson")
if {s["span_id"] for s in spans_b} != {s["span_id"] for s in spans}:
    sys.exit(f"peer B stitched {len(spans_b)} spans, peer A {len(spans)}: the two views differ")
chrome = json.load(open(chrome_out))
if not chrome.get("traceEvents"):
    sys.exit("chrome export has no traceEvents")
print(f"{len(spans)} spans from {len(nodes)} nodes, "
      f"{len(fetches)} remote fetches, {len(chrome['traceEvents'])} chrome events")
EOF
echo "fabric_smoke: stitched trace verified from both peers (chrome export: $chrome_out)"

echo "== graceful shutdown"
for pid in "$pid_a" "$pid_b"; do
  kill -TERM "$pid"
done
for pid in "$pid_a" "$pid_b"; do
  for _ in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "fabric_smoke: a daemon ignored SIGTERM" >&2
    exit 1
  fi
  wait "$pid" && status=0 || status=$?
  if [[ "$status" -ne 0 ]]; then
    echo "fabric_smoke: daemon exited $status on SIGTERM" >&2
    cat "$workdir"/daemon-*.log >&2
    exit 1
  fi
done
unset pid_a pid_b
echo "fabric_smoke: PASS"
