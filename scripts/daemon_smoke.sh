#!/usr/bin/env bash
# daemon_smoke.sh [BIN_DIR]
#
# End-to-end smoke test of the campaign daemon against the CLI:
#
#   1. start radqecd on a free port with a temp store
#   2. run the same small fig5 campaign through the CLI (no store) and
#      through the daemon, and assert the streamed tables and per-point
#      records match exactly (point order is scheduling-dependent, so
#      points compare keyed; elapsed_ms is timing, so it is stripped)
#   3. re-submit the campaign and assert a full cache hit: every point
#      streams back flagged cached and the daemon's engine counter
#      (radqecd_points_computed_total) does not advance
#   4. cancel a bigger campaign mid-stream with DELETE /v1/campaigns/{id},
#      assert the stream ends in a cancelled error record, then resubmit
#      and assert the resumed table is byte-identical to a CLI reference
#      run at the same parameters (resume from checkpoints, not restart)
#   5. SIGTERM the daemon and require a clean exit
#
# Builds into BIN_DIR (default: a temp dir). Needs python3 and curl.
set -euo pipefail

SHOTS=2000
SEED=7
EXPERIMENT=fig5

bindir=${1:-}
workdir=$(mktemp -d)
cleanup() {
  if [[ -n "${daemon_pid:-}" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT
if [[ -z "$bindir" ]]; then
  bindir="$workdir/bin"
fi
mkdir -p "$bindir"

echo "== building radqec + radqecd + smokeclient"
go build -o "$bindir/" ./cmd/radqec ./cmd/radqecd ./scripts/smokeclient

port=$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')
addr="127.0.0.1:$port"

echo "== starting radqecd on $addr"
"$bindir/radqecd" -addr "$addr" -store "$workdir/store" >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "daemon_smoke: radqecd died on startup" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null || {
  echo "daemon_smoke: daemon never became healthy" >&2; exit 1; }

echo "== CLI reference run"
"$bindir/radqec" -shots "$SHOTS" -seed "$SEED" -json "$EXPERIMENT" \
  >"$workdir/cli.ndjson" 2>/dev/null

echo "== cold daemon submission (typed Go client)"
"$bindir/smokeclient" -addr "$addr" -experiment "$EXPERIMENT" -shots "$SHOTS" -seed "$SEED" \
  >"$workdir/cold.ndjson" 2>/dev/null
computed_cold=$(curl -fsS "http://$addr/metrics" | awk '/^radqecd_points_computed_total /{print $2}')

echo "== warm daemon re-submission (must be a full cache hit)"
"$bindir/smokeclient" -addr "$addr" -experiment "$EXPERIMENT" -shots "$SHOTS" -seed "$SEED" \
  >"$workdir/warm.ndjson" 2>/dev/null
computed_warm=$(curl -fsS "http://$addr/metrics" | awk '/^radqecd_points_computed_total /{print $2}')

python3 - "$workdir" "$computed_cold" "$computed_warm" <<'EOF'
import json, sys
workdir, computed_cold, computed_warm = sys.argv[1], sys.argv[2], sys.argv[3]

def load(name):
    points, tables = {}, []
    with open(f"{workdir}/{name}.ndjson") as f:
        for line in f:
            rec = json.loads(line)
            if rec["type"] == "point":
                cached = rec.pop("cached", False)
                points[rec["key"]] = (rec, cached)
            elif rec["type"] == "table":
                rec.pop("elapsed_ms")
                tables.append(rec)
            else:
                sys.exit(f"unexpected record type {rec['type']!r} in {name}")
    if len(tables) != 1:
        sys.exit(f"{name}: {len(tables)} table records")
    return points, tables[0]

cli_pts, cli_tab = load("cli")
cold_pts, cold_tab = load("cold")
warm_pts, warm_tab = load("warm")

if cold_tab != cli_tab:
    sys.exit("cold daemon table differs from CLI table")
if warm_tab != cli_tab:
    sys.exit("warm daemon table differs from CLI table")
if set(cold_pts) != set(cli_pts):
    sys.exit("cold daemon streamed different point keys than the CLI")
for key, (rec, _) in cli_pts.items():
    if cold_pts[key][0] != rec:
        sys.exit(f"cold daemon point {key} differs from CLI")
    if warm_pts[key][0] != rec:
        sys.exit(f"warm daemon point {key} differs from CLI")
if any(cached for _, cached in cold_pts.values()):
    sys.exit("cold run served cached points from a fresh store")
if not all(cached for _, cached in warm_pts.values()):
    n = sum(1 for _, c in warm_pts.values() if not c)
    sys.exit(f"warm run recomputed {n} points (expected full cache hit)")
if computed_warm != computed_cold:
    sys.exit(f"warm run invoked the engine: points_computed_total "
             f"{computed_cold} -> {computed_warm}")
print(f"daemon_smoke: {len(cli_pts)} points: daemon==CLI, "
      f"warm re-submission was a full cache hit ({computed_cold} computed)")
EOF

echo "== cancel a campaign mid-stream"
CANCEL_SHOTS=20000
CANCEL_SEED=11
cancel_body=$(printf '{"experiment":"%s","shots":%d,"seed":%d}' "$EXPERIMENT" "$CANCEL_SHOTS" "$CANCEL_SEED")
curl -sS -N -D "$workdir/cancel.headers" -X POST "http://$addr/v1/campaigns" \
  -d "$cancel_body" >"$workdir/cancelled.ndjson" &
curl_pid=$!
cid=""
for _ in $(seq 1 600); do
  cid=$(awk -F': ' 'tolower($1)=="x-radqec-campaign-id"{print $2}' "$workdir/cancel.headers" 2>/dev/null | tr -d '\r' || true)
  if [[ -n "$cid" ]]; then break; fi
  sleep 0.05
done
if [[ -z "$cid" ]]; then
  echo "daemon_smoke: no campaign id header on the cancel run" >&2
  exit 1
fi
curl -fsS -X DELETE "http://$addr/v1/campaigns/$cid" >/dev/null
wait "$curl_pid" || true

python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]
recs = [json.loads(l) for l in open(f"{workdir}/cancelled.ndjson")]
if not recs:
    sys.exit("cancelled stream carried no records")
last = recs[-1]
if last.get("type") != "error" or not last.get("cancelled"):
    sys.exit(f"cancelled stream ended with {last!r}, want a cancelled error record")
if any(r.get("type") == "table" for r in recs):
    sys.exit("cancelled campaign still produced a table")
print(f"daemon_smoke: campaign cancelled after {len(recs)-1} streamed points")
EOF

cancelled_total=$(curl -fsS "http://$addr/metrics" | awk '/^radqecd_campaigns_cancelled_total /{print $2}')
if [[ "$cancelled_total" != "1" ]]; then
  echo "daemon_smoke: campaigns_cancelled_total = $cancelled_total, want 1" >&2
  exit 1
fi

echo "== CLI reference for the cancelled campaign"
"$bindir/radqec" -shots "$CANCEL_SHOTS" -seed "$CANCEL_SEED" -json "$EXPERIMENT" \
  >"$workdir/cancel_cli.ndjson" 2>/dev/null

echo "== resubmit: must resume from checkpoints to the identical table"
"$bindir/smokeclient" -addr "$addr" -experiment "$EXPERIMENT" -shots "$CANCEL_SHOTS" -seed "$CANCEL_SEED" \
  >"$workdir/resumed.ndjson" 2>/dev/null

python3 - "$workdir" <<'EOF'
import json, sys
workdir = sys.argv[1]

def load(name):
    points, tables = {}, []
    with open(f"{workdir}/{name}.ndjson") as f:
        for line in f:
            rec = json.loads(line)
            if rec["type"] == "point":
                cached = rec.pop("cached", False)
                points[rec["key"]] = (rec, cached)
            elif rec["type"] == "table":
                rec.pop("elapsed_ms")
                tables.append(rec)
            else:
                sys.exit(f"unexpected record type {rec['type']!r} in {name}")
    if len(tables) != 1:
        sys.exit(f"{name}: {len(tables)} table records")
    return points, tables[0]

cli_pts, cli_tab = load("cancel_cli")
res_pts, res_tab = load("resumed")
if res_tab != cli_tab:
    sys.exit("resumed table differs from the uninterrupted CLI reference")
if set(res_pts) != set(cli_pts):
    sys.exit("resumed run streamed different point keys than the CLI")
for key, (rec, _) in cli_pts.items():
    if res_pts[key][0] != rec:
        sys.exit(f"resumed point {key} differs from the CLI reference")
ncached = sum(1 for _, c in res_pts.values() if c)
if ncached == 0:
    sys.exit("resumed run served nothing from the store: cancellation flushed no progress")
print(f"daemon_smoke: resumed run byte-identical to CLI reference "
      f"({ncached}/{len(res_pts)} points served from the cancelled campaign's store)")
EOF

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
for _ in $(seq 1 100); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "daemon_smoke: daemon ignored SIGTERM" >&2
  exit 1
fi
wait "$daemon_pid" && status=0 || status=$?
if [[ "$status" -ne 0 ]]; then
  echo "daemon_smoke: daemon exited $status on SIGTERM" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
fi
unset daemon_pid
echo "daemon_smoke: PASS"
