module radqec

go 1.24
