// Package radqec's root benchmark harness: one benchmark per figure of
// the paper's evaluation (regenerating the same series at reduced shot
// counts so `go test -bench` stays tractable), plus the ablation benches
// for the design choices called out in DESIGN.md and microbenches for
// the hot substrates.
//
// Regenerate any figure at paper-scale statistics with the CLI, e.g.:
//
//	go run ./cmd/radqec -shots 20000 fig6
package radqec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"radqec/internal/arch"
	"radqec/internal/control"
	"radqec/internal/core"
	"radqec/internal/exp"
	"radqec/internal/frame"
	"radqec/internal/inject"
	"radqec/internal/matching"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/trace"
)

// benchCfg returns a reduced configuration that still exercises every
// code path of the experiment.
func benchCfg(shots int) exp.Config {
	return exp.Config{Shots: shots, Seed: 1, NS: 4}
}

func BenchmarkFig3TemporalDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig3(benchCfg(1)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig4SpatialDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Fig4(benchCfg(1)); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5Landscape(b *testing.B) {
	b.Run("rep", func(b *testing.B) {
		sim := mustSim(b, core.Options{
			Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 5},
			Topology: "mesh", Shots: 50, Seed: 1, TemporalSamples: 4,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.Strike(exp.Fig5Root)
		}
	})
	b.Run("xxzz", func(b *testing.B) {
		sim := mustSim(b, core.Options{
			Code:     core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 3},
			Topology: "mesh", Shots: 50, Seed: 1, TemporalSamples: 4,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.Strike(exp.Fig5Root)
		}
	})
}

func BenchmarkFig6Distance(b *testing.B) {
	b.Run("rep", func(b *testing.B) {
		sim := mustSim(b, core.Options{
			Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 15},
			Topology: "mesh", Shots: 50, Seed: 1,
		})
		roots := sim.UsedQubits()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.StrikeAtImpact(roots[i%len(roots)], false)
		}
	})
	b.Run("xxzz", func(b *testing.B) {
		sim := mustSim(b, core.Options{
			Code:     core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 5},
			Topology: "mesh", Shots: 50, Seed: 1,
		})
		roots := sim.UsedQubits()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.StrikeAtImpact(roots[i%len(roots)], false)
		}
	})
}

func BenchmarkFig7Spread(b *testing.B) {
	run := func(b *testing.B, spec core.CodeSpec, k int) {
		sim := mustSim(b, core.Options{
			Code: spec, Topology: "mesh", Shots: 50, Seed: 1,
		})
		src := rng.New(2)
		subs := sim.Transpiled().Topo.Graph.SampleConnectedSubgraphs(k, 8, src)
		if len(subs) == 0 {
			b.Fatal("no subgraphs")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.Erase(subs[i%len(subs)])
		}
	}
	b.Run("rep", func(b *testing.B) {
		run(b, core.CodeSpec{Family: core.FamilyRepetition, DZ: 15}, 15)
	})
	b.Run("xxzz", func(b *testing.B) {
		run(b, core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 3}, 9)
	})
}

func BenchmarkFig8Architecture(b *testing.B) {
	run := func(b *testing.B, spec core.CodeSpec, topo string) {
		sim := mustSim(b, core.Options{
			Code: spec, Topology: topo, Shots: 25, Seed: 1, TemporalSamples: 3,
		})
		roots := sim.UsedQubits()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sim.Strike(roots[i%len(roots)]).Median()
		}
	}
	b.Run("rep/linear", func(b *testing.B) {
		run(b, core.CodeSpec{Family: core.FamilyRepetition, DZ: 11}, "linear")
	})
	b.Run("rep/brooklyn", func(b *testing.B) {
		run(b, core.CodeSpec{Family: core.FamilyRepetition, DZ: 11}, "brooklyn")
	})
	b.Run("xxzz/mesh", func(b *testing.B) {
		run(b, core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 3}, "mesh")
	})
	b.Run("xxzz/cairo", func(b *testing.B) {
		run(b, core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 3}, "cairo")
	})
}

// Ablation benches (DESIGN.md): decoder choice, temporal resolution,
// layout strategy.

func BenchmarkAblationDecoder(b *testing.B) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 4))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[2], 1.0, true)
	ex := inject.NewExecutor(tr.Circuit, noise.NewDepolarizing(0.01), ev)
	bits := ex.Run(rng.New(3))
	b.Run("blossom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = code.Decode(bits)
		}
	})
	b.Run("union-find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = code.DecodeUnionFind(bits)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = code.DecodeGreedy(bits)
		}
	})
}

func BenchmarkAblationNs(b *testing.B) {
	for _, ns := range []int{5, 10, 20} {
		b.Run(nsName(ns), func(b *testing.B) {
			sim := mustSim(b, core.Options{
				Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 5},
				Topology: "mesh", Shots: 25, Seed: 1, TemporalSamples: ns,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sim.Strike(2)
			}
		})
	}
}

func nsName(ns int) string {
	switch ns {
	case 5:
		return "ns5"
	case 10:
		return "ns10"
	default:
		return "ns20"
	}
}

func BenchmarkAblationRouter(b *testing.B) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	topo := arch.Cairo()
	b.Run("compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := arch.TranspileWithLayout(code.Circ, topo, arch.LayoutCompact); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trivial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := arch.TranspileWithLayout(code.Circ, topo, arch.LayoutTrivial); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Sweep-engine benches: the same campaign grid run with fixed shot
// allocation versus adaptive Wilson-interval allocation. The adaptive
// run targets the half-width the fixed run only guarantees at its full
// per-point budget, so the ns/op gap is the shots the stopping rule
// saves.

func sweepBenchPoints(b *testing.B) []sweep.Point {
	b.Helper()
	code, err := qec.NewRepetition(5)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 2))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	var pts []sweep.Point
	for root := 0; root < 6; root++ {
		ev := noise.NewRadiationEvent(dist[root], 1.0, true)
		seed := uint64(root + 1)
		pts = append(pts, sweep.Point{
			Key: "bench",
			Prepare: func() sweep.BatchRunner {
				camp := &inject.Campaign{
					Exec:     inject.NewExecutor(tr.Circuit, noise.NewDepolarizing(0.01), ev),
					Decode:   code.Decode,
					Expected: code.ExpectedLogical(),
				}
				return func(start, n int) sweep.Counts {
					r := camp.RunFrom(seed, start, n)
					return sweep.Counts{Shots: r.Shots, Errors: r.Errors}
				}
			},
		})
	}
	return pts
}

func BenchmarkSweepFixed(b *testing.B) {
	shots := sweep.WorstCaseShots(0.05)
	pts := sweepBenchPoints(b) // Prepare re-runs per sweep, so reuse is safe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep.Run(context.Background(), sweep.Config{Policy: sweep.Policy{Shots: shots}}, pts)
	}
}

func BenchmarkSweepAdaptive(b *testing.B) {
	pts := sweepBenchPoints(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep.Run(context.Background(), sweep.Config{Policy: sweep.Policy{CI: 0.05}}, pts)
	}
}

// Mixed heterogeneous campaigns on one shared pool against a cold
// store — the daemon's steady-state shape: a duplicated fig5 repetition
// campaign (the single-flight dedup target), a fig6 XXZZ campaign and a
// multi-round memory campaign, all concurrent. The acceptance metric is
// the Controller variant's aggregate shots/s: >= 1.3x the Static
// scheduler's on this mix, because identical in-flight points are
// computed once and replayed to the duplicate while static campaigns
// race each other through the same points.
func benchMixedCampaigns(b *testing.B, pol *control.Policy, delivered *int64, traced bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// The tracing variants share one campaign root per iteration:
		// traced=false is the zero-cost contract (a zero SpanContext, the
		// exact daemon configuration with sampling off), traced=true
		// records every point/chunk/commit span into the ring.
		var tc trace.SpanContext
		var root trace.ActiveSpan
		if traced {
			root = trace.New("bench").Campaign("bench")
			tc = root.Context()
		}
		// A bounded pool keeps the campaigns contending for workers — the
		// regime the controller's single-flight, priorities and weighting
		// are for. The memory campaign is resubmitted identically three
		// times, the cold-daemon burst the single-flight satellite targets:
		// its uniform point costs keep the copies in lockstep, so the
		// static path recomputes in-flight duplicates the cache cannot yet
		// serve, while controller followers park on the leader's hash and
		// replay its commit.
		sched := sweep.NewScheduler(4)
		b.StartTimer()

		base := exp.Config{Seed: 11, NS: 4, Workers: 2, Scheduler: sched, Cache: st, Control: pol, Trace: tc,
			OnPoint: func(r sweep.Result) { atomic.AddInt64(delivered, int64(r.Shots)) }}
		var wg sync.WaitGroup
		run := func(name string, cfg exp.Config) {
			defer wg.Done()
			e, ok := exp.Find(name)
			if !ok {
				b.Errorf("experiment %s not registered", name)
				return
			}
			if _, err := e.Run(cfg); err != nil {
				b.Error(err)
			}
		}
		fig5 := base
		fig5.Shots = 1024
		fig6 := base
		fig6.Shots = 128
		mem := base
		mem.Shots = 2048
		wg.Add(5)
		go run("fig5", fig5)
		go run("fig6", fig6)
		go run("memory", mem)
		go run("memory", mem) // identical resubmissions: dedup under
		go run("memory", mem) // single-flight on the cold daemon
		wg.Wait()
		root.End() // no-op when untraced

		b.StopTimer()
		sched.Close()
		st.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(atomic.LoadInt64(delivered))/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkSweepMixedCampaignsStatic(b *testing.B) {
	var shots int64
	benchMixedCampaigns(b, nil, &shots, false)
}

func BenchmarkSweepMixedCampaignsController(b *testing.B) {
	var shots int64
	benchMixedCampaigns(b, control.Default(), &shots, false)
}

// Tracing variants of the controller mix. TracingOff is the daemon's
// default configuration (sampling off — the zero SpanContext the
// zero-cost contract is about) and is gated against the Controller
// anchor by scripts/bench_gate.sh; TracingSampled records the full
// span tree and measures what sampling a campaign costs.
func BenchmarkSweepMixedCampaignsTracingOff(b *testing.B) {
	var shots int64
	benchMixedCampaigns(b, control.Default(), &shots, false)
}

func BenchmarkSweepMixedCampaignsTracingSampled(b *testing.B) {
	var shots int64
	benchMixedCampaigns(b, control.Default(), &shots, true)
}

// Engine benches: the Fig. 5 repetition-code campaign grid (8 physical
// error rates x 10 temporal samples of a spreading strike at the
// paper's root, decode included) sampled by the scalar frame engine
// versus the bit-parallel batched engine. The reported shots/s is the
// acceptance metric of the batched engine: >= 10x scalar on this grid.

func benchFig5RepGrid(b *testing.B, batched bool) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 2))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	samples := noise.TemporalSamples(10)
	const shots = 2048
	// Campaigns are built once, outside the timer: the series measures
	// steady-state engine throughput, matching how the sweep engine
	// reuses one campaign across every chunk of a point.
	type gridRun struct {
		run  func(seed uint64, shots int) frame.Result
		seed uint64
	}
	var grid []gridRun
	for pi, p := range exp.Fig5PhysicalRates() {
		for k, rootProb := range samples {
			ev := noise.NewRadiationEvent(dist[exp.Fig5Root], rootProb, true)
			sim := frame.New(tr.Circuit, noise.NewDepolarizing(p), ev, 1)
			seed := uint64(pi*1009 + k*13)
			if batched {
				camp := &frame.BatchCampaign{
					Sim:        frame.NewBatchSimulator(sim),
					DecodeTile: code.DecodeTile,
					Expected:   code.ExpectedLogical(),
					Workers:    1,
					Width:      frame.TileShots,
				}
				grid = append(grid, gridRun{camp.Run, seed})
			} else {
				camp := &frame.Campaign{
					Sim:      sim,
					Decode:   code.Decode,
					Expected: code.ExpectedLogical(),
					Workers:  1,
				}
				grid = append(grid, gridRun{camp.Run, seed})
			}
		}
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range grid {
			g.run(g.seed, shots)
			total += shots
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkFrameEnginesFig5Rep(b *testing.B) {
	b.Run("scalar", func(b *testing.B) { benchFig5RepGrid(b, false) })
	b.Run("batched", func(b *testing.B) { benchFig5RepGrid(b, true) })
}

// The XXZZ acceptance pair: a Fig. 6-style d=3 XXZZ grid (full-impact
// erasure at each of the first rootCount used physical qubits, decode
// included) sampled by the exact-oracle tableau engine versus the
// universal batched frame engine. The reported shots/s ratio is the
// acceptance metric of the universal engine: >= 5x tableau on this
// grid. CI records both series as BENCH_xxzz.json and benchstat-gates
// regressions against main.
func benchFig6XXZZGrid(b *testing.B, engine string, width int) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 4))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	roots := tr.Used()
	const rootCount = 6
	if len(roots) > rootCount {
		roots = roots[:rootCount]
	}
	const shots = 2048
	// Campaigns are built once, outside the timer, so the series
	// measures steady-state engine throughput (the sweep engine reuses
	// one campaign across every chunk of a point the same way).
	runs := make([]core.EngineRunner, len(roots))
	for ri, root := range roots {
		ev := noise.NewRadiationEvent(dist[root], 1.0, false)
		seed := uint64(ri*1009 + 7)
		runs[ri] = core.NewEngineRunner(engine, tr.Circuit,
			noise.NewDepolarizing(0.01), ev, seed,
			code.ExpectedLogical(), code.Decode, code.DecodeTile, width, 1)
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range runs {
			run(0, shots)
			total += shots
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkFrameEnginesFig6XXZZ(b *testing.B) {
	b.Run("tableau", func(b *testing.B) { benchFig6XXZZGrid(b, core.EngineTableau, 0) })
	// "batched" is the acceptance series (auto width resolves to the
	// widest tile); "batched64" pins the single-word engine so the
	// tile speedup stays measurable in one run.
	b.Run("batched", func(b *testing.B) { benchFig6XXZZGrid(b, core.EngineBatch, 0) })
	b.Run("batched64", func(b *testing.B) { benchFig6XXZZGrid(b, core.EngineBatch, 64) })
}

// BenchmarkEngineWidthMatrix is the shots/s matrix behind the CI width
// artifact: every (code, distance, rounds) workload crossed with every
// supported tile width. CI runs it with -benchmem, stores the raw
// series as BENCH_widths.json and flattens the shots/s metric into
// bench_widths.csv (scripts/bench_widths_csv.sh) so a width regression
// is visible as a column, not a diff.
func BenchmarkEngineWidthMatrix(b *testing.B) {
	type workload struct {
		name   string
		code   *qec.Code
		mesh   [2]int
		rounds int
	}
	mk := func(name string, c *qec.Code, err error, mw, mh, rounds int) workload {
		if err != nil {
			b.Fatal(err)
		}
		return workload{name, c, [2]int{mw, mh}, rounds}
	}
	rep15r4, err15 := qec.NewRepetitionRounds(15, 4)
	xx33, err33 := qec.NewXXZZ(3, 3)
	xx33r4, err334 := qec.NewXXZZRounds(3, 3, 4)
	workloads := []workload{
		mk("rep-d15-r4", rep15r4, err15, 5, 6, 4),
		mk("xxzz-d3-r2", xx33, err33, 5, 4, 2),
		mk("xxzz-d3-r4", xx33r4, err334, 5, 4, 4),
	}
	for _, w := range workloads {
		tr, err := arch.Transpile(w.code.Circ, arch.Mesh(w.mesh[0], w.mesh[1]))
		if err != nil {
			b.Fatal(err)
		}
		dist := tr.Topo.Graph.AllPairsShortestPaths()
		root := tr.Used()[0]
		for _, width := range frame.TileWidths() {
			b.Run(fmt.Sprintf("%s/w%d", w.name, width), func(b *testing.B) {
				ev := noise.NewRadiationEvent(dist[root], 1.0, false)
				run := core.NewEngineRunner(core.EngineBatch, tr.Circuit,
					noise.NewDepolarizing(0.01), ev, 7,
					w.code.ExpectedLogical(), w.code.Decode, w.code.DecodeTile, width, 1)
				const shots = 2048
				total := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(0, shots)
					total += shots
				}
				b.StopTimer()
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "shots/s")
			})
		}
	}
}

// Microbenches for the hot substrates.

func BenchmarkShotRepetition15(b *testing.B) {
	code, err := qec.NewRepetition(15)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 6))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[12], 1.0, true)
	ex := inject.NewExecutor(tr.Circuit, noise.NewDepolarizing(0.01), ev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits := ex.Run(rng.New(uint64(i)))
		_ = code.Decode(bits)
		inject.ReleaseBits(bits)
	}
}

func BenchmarkShotXXZZ33(b *testing.B) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 4))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[2], 1.0, true)
	ex := inject.NewExecutor(tr.Circuit, noise.NewDepolarizing(0.01), ev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits := ex.Run(rng.New(uint64(i)))
		_ = code.Decode(bits)
		inject.ReleaseBits(bits)
	}
}

func BenchmarkTranspileBrooklyn(b *testing.B) {
	code, err := qec.NewRepetition(11)
	if err != nil {
		b.Fatal(err)
	}
	topo := arch.Brooklyn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arch.Transpile(code.Circ, topo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchingDecoderGraph(b *testing.B) {
	// A dense 24-defect matching instance, representative of heavy
	// corruption on the distance-(15,1) repetition code.
	src := rng.New(5)
	n := 48
	var edges []matching.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, matching.Edge{I: i, J: j, W: int64(src.Intn(12))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.MinWeightPerfectMatching(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func mustSim(b *testing.B, opts core.Options) *core.Simulator {
	b.Helper()
	sim, err := core.NewSimulator(opts)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}
