// Radiationsweep compares how the repetition and XXZZ code families ride
// out the same radiation event, sweeping the intrinsic physical error
// rate like the paper's Figure 5 landscape.
package main

import (
	"flag"
	"fmt"
	"log"

	"radqec/internal/core"
)

func main() {
	engine := flag.String("engine", core.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	decoder := flag.String("decoder", core.DecoderMWPM, "syndrome decoder: mwpm or uf")
	flag.Parse()
	// Route selection through the shared policy up front so a typo
	// fails before the sweep starts.
	resolved, err := core.ResolveEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine %s, decoder %s\n", resolved, *decoder)
	specs := []core.CodeSpec{
		{Family: core.FamilyRepetition, DZ: 5},
		{Family: core.FamilyXXZZ, DZ: 3, DX: 3},
	}
	physRates := []float64{1e-8, 1e-5, 1e-3, 1e-2, 1e-1}

	fmt.Println("logical error at the moment of impact (strike on qubit 2, full spread)")
	fmt.Printf("%-12s", "phys rate")
	for _, s := range specs {
		fmt.Printf("  %s-(%d,%d)", s.Family, s.DZ, max(s.DX, 1))
	}
	fmt.Println()
	for _, p := range physRates {
		fmt.Printf("%-12.0e", p)
		for _, spec := range specs {
			sim, err := core.NewSimulator(core.Options{
				Code:              spec,
				Topology:          "mesh",
				PhysicalErrorRate: p,
				Shots:             2000,
				Seed:              42,
				Engine:            *engine,
				Decoder:           *decoder,
			})
			if err != nil {
				log.Fatal(err)
			}
			res := sim.StrikeAtImpact(2, true)
			fmt.Printf("  %13.2f%%", 100*res.Rate())
		}
		fmt.Println()
	}
	fmt.Println("\nThe radiation floor persists even at p=1e-8: no amount of gate")
	fmt.Println("fidelity rescues a surface code from a particle strike (Observation I).")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
