// Archcompare transpiles the distance-(3,3) XXZZ code onto several
// hardware topologies and reports routing overhead and radiation
// resilience per device, in the spirit of the paper's Figure 8b.
package main

import (
	"flag"
	"fmt"
	"log"

	"radqec/internal/core"
	"radqec/internal/stats"
)

func main() {
	engine := flag.String("engine", core.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	decoder := flag.String("decoder", core.DecoderMWPM, "syndrome decoder: mwpm or uf")
	flag.Parse()
	if _, err := core.ResolveEngine(*engine); err != nil {
		log.Fatal(err)
	}
	topologies := []string{"complete", "mesh", "almaden", "johannesburg", "cairo", "cambridge", "brooklyn", "linear"}

	fmt.Printf("%-14s %8s %10s %12s %12s\n",
		"architecture", "swaps", "2q gates", "median err", "worst qubit")
	for _, name := range topologies {
		sim, err := core.NewSimulator(core.Options{
			Code:            core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 3},
			Topology:        name,
			Shots:           400,
			Seed:            7,
			TemporalSamples: 5,
			Engine:          *engine,
			Decoder:         *decoder,
		})
		if err != nil {
			log.Fatal(err)
		}
		var medians []float64
		for _, root := range sim.UsedQubits() {
			medians = append(medians, sim.Strike(root).Median())
		}
		_, worst := stats.MinMax(medians)
		fmt.Printf("%-14s %8d %10d %11.2f%% %11.2f%%\n",
			name, sim.Transpiled().SwapCount, sim.Transpiled().Circuit.CountTwoQubit(),
			100*stats.Median(medians), 100*worst)
	}
	fmt.Println("\nDegree-starved devices (linear) pay for the XXZZ code's degree-4")
	fmt.Println("stabilizers with SWAP chains that widen the fault surface")
	fmt.Println("(Observation VIII).")
}
