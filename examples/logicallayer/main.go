// Logicallayer demonstrates the paper's future-work direction: taking
// the post-QEC logical error rates measured at the physical level and
// propagating them through a logical program. Five surface-code patches
// prepare a logical GHZ state while a radiation strike hits one patch
// and spreads to its neighbours.
package main

import (
	"flag"
	"fmt"
	"log"

	"radqec/internal/core"
	"radqec/internal/logical"
)

func main() {
	engine := flag.String("engine", core.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	decoder := flag.String("decoder", core.DecoderMWPM, "syndrome decoder: mwpm or uf")
	flag.Parse()
	if _, err := core.ResolveEngine(*engine); err != nil {
		log.Fatal(err)
	}
	// Step 1: extract the per-patch fault model from a physical-level
	// campaign on the XXZZ-(3,3) code.
	sim, err := core.NewSimulator(core.Options{
		Code:     core.CodeSpec{Family: core.FamilyXXZZ, DZ: 3, DX: 3},
		Topology: "mesh",
		Shots:    2000,
		Seed:     1,
		Engine:   *engine,
		Decoder:  *decoder,
	})
	if err != nil {
		log.Fatal(err)
	}
	impact := sim.StrikeAtImpact(2, true).Rate()
	residual := sim.Clean().Rate()
	fmt.Printf("patch model from physical campaign: impact %.2f%%, residual %.3f%%\n\n",
		100*impact, 100*residual)

	// Step 2: run the logical GHZ workload with that model.
	inj, err := logical.NewInjector(logical.PatchModel{
		LogicalErrorAtImpact: impact,
		IdleError:            residual,
	})
	if err != nil {
		log.Fatal(err)
	}
	const patches = 5
	ghz := logical.GHZCircuit(patches)
	camp := &logical.Campaign{Injector: inj, Circuit: ghz, Accept: logical.GHZAccept}

	inj.SetStrike(nil, 0)
	fmt.Printf("no strike:          GHZ failure %.2f%%\n", 100*camp.Run(7, 4000))
	for struck := 0; struck < patches; struck++ {
		dist := make([]int, patches)
		for q := range dist {
			if q > struck {
				dist[q] = q - struck
			} else {
				dist[q] = struck - q
			}
		}
		inj.SetStrike(dist, 1.0)
		fmt.Printf("strike on patch %d:  GHZ failure %.2f%%\n", struck, 100*camp.Run(7, 4000))
	}
	fmt.Println("\nA strike on any patch of the logical program is catastrophic for")
	fmt.Println("entangled workloads: the logical layer inherits the physical layer's")
	fmt.Println("spatial correlation.")
}
