// Spreadstudy contrasts one spatially-correlated radiation fault with
// k independent erasures on the distance-(15,1) repetition code — the
// paper's Figure 7 question: how many simultaneous resets does one
// spreading strike amount to?
package main

import (
	"flag"
	"fmt"
	"log"

	"radqec/internal/core"
	"radqec/internal/graph"
	"radqec/internal/rng"
	"radqec/internal/stats"
)

func main() {
	engine := flag.String("engine", core.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	decoder := flag.String("decoder", core.DecoderMWPM, "syndrome decoder: mwpm or uf")
	flag.Parse()
	if _, err := core.ResolveEngine(*engine); err != nil {
		log.Fatal(err)
	}
	sim, err := core.NewSimulator(core.Options{
		Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 15},
		Topology: "mesh",
		Shots:    1000,
		Seed:     3,
		Engine:   *engine,
		Decoder:  *decoder,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference: a single spreading strike at the moment of impact,
	// median over all roots.
	var spreadRates []float64
	for _, root := range sim.UsedQubits() {
		spreadRates = append(spreadRates, sim.StrikeAtImpact(root, true).Rate())
	}
	reference := stats.Median(spreadRates)
	fmt.Printf("single spreading strike (median over roots): %.2f%%\n\n", 100*reference)

	// Correlated k-qubit erasures over connected lattice patches.
	topo := sim.Transpiled().Topo
	src := rng.New(11)
	fmt.Printf("%8s %18s %18s\n", "k", "mean logical err", "median logical err")
	for _, k := range []int{1, 5, 10, 13, 15, 16, 18} {
		subs := sampleSubgraphs(topo.Graph, k, 10, src)
		var rates []float64
		for _, members := range subs {
			rates = append(rates, sim.Erase(members).Rate())
		}
		fmt.Printf("%8d %17.2f%% %17.2f%%\n", k, 100*stats.Mean(rates), 100*stats.Median(rates))
	}
	fmt.Println("\nThe cliff sits just past half the device: correlated faults that")
	fmt.Println("erase a majority of the data qubits defeat any matching decoder")
	fmt.Println("(Observations V and VI).")
}

func sampleSubgraphs(g *graph.Graph, k, count int, src *rng.Source) [][]int {
	return g.SampleConnectedSubgraphs(k, count, src)
}
