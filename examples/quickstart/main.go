// Quickstart: build a distance-5 repetition code, transpile it onto a
// mesh device, strike physical qubit 2 with a radiation event and report
// the post-decoding logical error rate per temporal sample.
package main

import (
	"fmt"
	"log"

	"radqec/internal/core"
)

func main() {
	sim, err := core.NewSimulator(core.Options{
		Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 5},
		Topology: "mesh",
		Shots:    2000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("code:", sim.Code())
	fmt.Println("device qubits:", sim.NumPhysicalQubits(),
		"routing SWAPs:", sim.Transpiled().SwapCount)

	clean := sim.Clean()
	fmt.Printf("intrinsic noise only: %.2f%% logical error\n", 100*clean.Rate())

	evo := sim.Strike(2) // particle impact on physical qubit 2
	fmt.Println("\nradiation strike at qubit 2 (full spatial spread):")
	for k, s := range evo.Samples {
		lo, hi := s.CI()
		fmt.Printf("  sample %2d: %6.2f%% logical error  (95%% CI %5.2f%%-%5.2f%%)\n",
			k, 100*s.Rate(), 100*lo, 100*hi)
	}
	fmt.Printf("\noverall over the event: %.2f%% (median %.2f%%)\n",
		100*evo.Overall(), 100*evo.Median())
}
