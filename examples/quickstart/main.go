// Quickstart: build a distance-5 repetition code, transpile it onto a
// mesh device, strike physical qubit 2 with a radiation event and report
// the post-decoding logical error rate per temporal sample.
//
// Engine and decoder selection route through the shared resolution
// policy (core.ResolveEngine / core.ResolveDecoder inside the
// simulator), so the default run rides the bit-parallel batched frame
// engine exactly like the radqec CLI does.
package main

import (
	"flag"
	"fmt"
	"log"

	"radqec/internal/core"
)

func main() {
	engine := flag.String("engine", core.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	decoder := flag.String("decoder", core.DecoderMWPM, "syndrome decoder: mwpm or uf")
	rounds := flag.Int("rounds", 2, "stabilization rounds (>= 2)")
	flag.Parse()

	resolved, err := core.ResolveEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := core.NewSimulator(core.Options{
		Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 5, Rounds: *rounds},
		Topology: "mesh",
		Shots:    2000,
		Seed:     1,
		Engine:   *engine,
		Decoder:  *decoder,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("code:", sim.Code())
	fmt.Printf("engine: %s (resolved from %q), decoder: %s\n", resolved, *engine, *decoder)
	fmt.Println("device qubits:", sim.NumPhysicalQubits(),
		"routing SWAPs:", sim.Transpiled().SwapCount)

	clean := sim.Clean()
	fmt.Printf("intrinsic noise only: %.2f%% logical error\n", 100*clean.Rate())

	evo := sim.Strike(2) // particle impact on physical qubit 2
	fmt.Println("\nradiation strike at qubit 2 (full spatial spread):")
	for k, s := range evo.Samples {
		lo, hi := s.CI()
		fmt.Printf("  sample %2d: %6.2f%% logical error  (95%% CI %5.2f%%-%5.2f%%)\n",
			k, 100*s.Rate(), 100*lo, 100*hi)
	}
	fmt.Printf("\noverall over the event: %.2f%% (median %.2f%%)\n",
		100*evo.Overall(), 100*evo.Median())
}
